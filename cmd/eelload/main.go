// Command eelload replays a deterministic edit-request stream against a
// running eeld daemon at a configurable rate and concurrency, and
// reports latency percentiles and throughput in `go test -bench` text
// format, so cmd/benchdiff can record them as a series in
// BENCH_sched.json and gate regressions in CI.
//
//	eelload -addr http://127.0.0.1:8379 -duration 10s -concurrency 8
//	    10-second schedule-request run, bench lines on stdout
//	eelload -mode edit -op reschedule -requests 20 \
//	    -save-input in.exe -save-output out.exe
//	    edit-mode run that keeps the input image and the daemon's first
//	    response for offline byte-diffing against eelprof
//	eelload ... | benchdiff -update -series eeld-load
//	    record the run
//	eelload -traces ... | benchdiff -update -series eeld-trace
//	    also pull GET /debug/flight afterwards and report per-span
//	    latency attribution (daemon must run with -flight N)
//
// The request stream is seeded (-seed): two runs with the same flags
// replay byte-identical requests, which keeps CI latency comparisons
// honest and lets the smoke job diff daemon output against the offline
// tool. Every response is checked (status 200 and, in schedule mode,
// response shape); any failure makes the exit status non-zero.
//
// After the run eelload scrapes /metrics?format=json and reports the
// daemon's schedule-cache hit rate; -min-hit-rate N turns that into an
// assertion, which the CI warm-restart check uses to prove a spill
// actually warmed the cache. The scrape also emits the daemon's host
// core count and worker-pool size as `# manifest:` lines on stdout, so
// a piped `benchdiff -update` stamps them into the recorded series and
// later hard-gate comparisons across differently-sized daemons are
// downgraded to advisory.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eel/internal/obs"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eelload:", err)
		os.Exit(1)
	}
}

type result struct {
	ns  int64
	err error
}

func run() error {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8379", "daemon base URL")
		mode        = flag.String("mode", "schedule", "request mode: schedule or edit")
		op          = flag.String("op", "reschedule", "edit mode: reschedule or instrument")
		machine     = flag.String("machine", "ultrasparc", "scheduling model")
		duration    = flag.Duration("duration", 0, "run for this long (overrides -requests)")
		requests    = flag.Int("requests", 100, "total requests when -duration is unset")
		rate        = flag.Float64("rate", 0, "target requests/second across all workers (0 = unthrottled)")
		concurrency = flag.Int("concurrency", 4, "concurrent client workers")
		blocks      = flag.Int("blocks", 24, "blocks per schedule request")
		unique      = flag.Int("unique", 16, "distinct request payloads cycled through")
		seed        = flag.Int64("seed", 1, "request stream seed")
		tenant      = flag.String("tenant", "", "X-Eeld-Tenant header value")
		workloadID  = flag.String("workload", "130.li", "edit mode: synthetic benchmark to generate")
		dynInsts    = flag.Uint64("dyninsts", 1<<13, "edit mode: dynamic instructions in the generated image")
		saveInput   = flag.String("save-input", "", "edit mode: write the request image here")
		saveOutput  = flag.String("save-output", "", "edit mode: write the first response body here")
		minHitRate  = flag.Float64("min-hit-rate", -1, "fail unless the daemon's cache hit rate is at least this percent")
		benchName   = flag.String("bench-name", "EeldLoad", "benchmark family name on output lines")
		traces      = flag.Bool("traces", false, "after the run, pull /debug/flight and report per-span latency attribution (daemon must run with -flight)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: eelload [flags]")
		os.Exit(2)
	}

	payloads, path, err := buildPayloads(*mode, *op, *machine, *blocks, *unique, *seed, *workloadID, *dynInsts, *saveInput)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: 60 * time.Second}
	var (
		next     atomic.Int64 // request sequence number
		firstOut []byte
		firstMu  sync.Mutex
	)
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	// Shared throttle: a token drips every 1/rate seconds; workers take
	// one per request.
	var throttle <-chan time.Time
	if *rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *rate))
		defer t.Stop()
		throttle = t.C
	}

	results := make(chan result, 4096)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq := next.Add(1) - 1
				if deadline.IsZero() {
					if seq >= int64(*requests) {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				if throttle != nil {
					<-throttle
				}
				body := payloads[seq%int64(len(payloads))]
				t0 := time.Now()
				out, err := post(client, *addr+path, *tenant, body, *mode)
				results <- result{ns: time.Since(t0).Nanoseconds(), err: err}
				if err == nil && seq == 0 {
					firstMu.Lock()
					firstOut = out
					firstMu.Unlock()
				}
			}
		}()
	}
	done := make(chan struct{})
	var lat []int64
	var failures int
	var firstErr error
	go func() {
		defer close(done)
		for r := range results {
			if r.err != nil {
				failures++
				if firstErr == nil {
					firstErr = r.err
				}
				continue
			}
			lat = append(lat, r.ns)
		}
	}()
	wg.Wait()
	close(results)
	<-done
	elapsed := time.Since(start)

	if len(lat) == 0 {
		if firstErr != nil {
			return fmt.Errorf("no successful requests: %w", firstErr)
		}
		return fmt.Errorf("no requests completed")
	}
	if *saveOutput != "" {
		firstMu.Lock()
		err := os.WriteFile(*saveOutput, firstOut, 0o644)
		firstMu.Unlock()
		if err != nil {
			return err
		}
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 {
		i := int(p / 100 * float64(len(lat)-1))
		return lat[i]
	}
	var sum int64
	for _, ns := range lat {
		sum += ns
	}
	rps := float64(len(lat)) / elapsed.Seconds()

	// Bench lines on stdout, ParseGoBench-compatible: the mean line
	// doubles as throughput (ns/op is the reciprocal of req/s).
	n := len(lat)
	fmt.Printf("Benchmark%s/mode=%s/p50 %d %d ns/op\n", *benchName, *mode, n, pct(50))
	fmt.Printf("Benchmark%s/mode=%s/p90 %d %d ns/op\n", *benchName, *mode, n, pct(90))
	fmt.Printf("Benchmark%s/mode=%s/p99 %d %d ns/op\n", *benchName, *mode, n, pct(99))
	fmt.Printf("Benchmark%s/mode=%s/mean %d %d ns/op\n", *benchName, *mode, n, sum/int64(n))

	fmt.Fprintf(os.Stderr,
		"eelload: %d ok, %d failed in %.2fs (%.1f req/s); p50 %.2fms p90 %.2fms p99 %.2fms\n",
		n, failures, elapsed.Seconds(), rps,
		float64(pct(50))/1e6, float64(pct(90))/1e6, float64(pct(99))/1e6)

	if err := reportCache(client, *addr, *minHitRate); err != nil {
		return err
	}
	if *traces {
		if err := reportTraces(client, *addr, *benchName, *mode); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d request(s) failed (first: %v)", failures, firstErr)
	}
	return nil
}

// reportTraces pulls the daemon's flight recorder and prints a latency
// attribution table: for every top-level span name across successful
// request traces, how many requests it appears in, its mean duration,
// and its share of summed request wall time. Per-span means also go out
// as bench lines so `benchdiff -update -series eeld-trace` can record
// attribution over time and gate on a phase quietly absorbing the
// latency budget.
func reportTraces(client *http.Client, addr, benchName, mode string) error {
	resp, err := client.Get(addr + "/debug/flight")
	if err != nil {
		return fmt.Errorf("fetching flight recorder: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/flight: status %d (start eeld with -flight N)", resp.StatusCode)
	}
	type agg struct {
		count int64
		ns    int64
	}
	spans := map[string]*agg{}
	var names []string
	var nTraces, wallNs int64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		var tr obs.TraceExport
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			return fmt.Errorf("parsing flight line: %w", err)
		}
		if tr.Kind != "request" || tr.Code != http.StatusOK {
			continue
		}
		nTraces++
		wallNs += tr.WallNs
		for _, sp := range tr.Spans {
			if sp.Parent != -1 {
				continue
			}
			a := spans[sp.Name]
			if a == nil {
				a = &agg{}
				spans[sp.Name] = a
				names = append(names, sp.Name)
			}
			a.count++
			a.ns += sp.DurNs
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if nTraces == 0 {
		return fmt.Errorf("flight recorder holds no successful request traces")
	}
	sort.Slice(names, func(i, j int) bool { return spans[names[i]].ns > spans[names[j]].ns })
	fmt.Fprintf(os.Stderr, "eelload: latency attribution over %d retained traces (%.2fms wall total):\n",
		nTraces, float64(wallNs)/1e6)
	var attributed int64
	for _, name := range names {
		a := spans[name]
		attributed += a.ns
		fmt.Fprintf(os.Stderr, "  %-16s %5d spans  mean %8.3fms  %5.1f%% of wall\n",
			name, a.count, float64(a.ns)/float64(a.count)/1e6, 100*float64(a.ns)/float64(wallNs))
		fmt.Printf("Benchmark%s/mode=%s/trace/span=%s/mean %d %d ns/op\n",
			benchName, mode, name, a.count, a.ns/a.count)
	}
	fmt.Fprintf(os.Stderr, "  %-16s %.1f%% of wall attributed to top-level spans\n",
		"(total)", 100*float64(attributed)/float64(wallNs))
	return nil
}

// buildPayloads prepares the deterministic request bodies and the
// endpoint path. Schedule mode cycles -unique random block sets; edit
// mode generates one synthetic image and posts it repeatedly.
func buildPayloads(mode, op, machine string, blocks, unique int, seed int64, workloadID string, dynInsts uint64, saveInput string) ([][]byte, string, error) {
	switch mode {
	case "schedule":
		rng := rand.New(rand.NewSource(seed))
		payloads := make([][]byte, unique)
		for i := range payloads {
			req := struct {
				Machine string     `json:"machine"`
				Blocks  [][]uint32 `json:"blocks"`
			}{Machine: machine, Blocks: make([][]uint32, blocks)}
			for b := range req.Blocks {
				insts := workload.RandomBlock(rng, 4+rng.Intn(12), false)
				words := make([]uint32, len(insts))
				for j, inst := range insts {
					w, err := sparc.Encode(inst)
					if err != nil {
						return nil, "", err
					}
					words[j] = w
				}
				req.Blocks[b] = words
			}
			body, err := json.Marshal(req)
			if err != nil {
				return nil, "", err
			}
			payloads[i] = body
		}
		return payloads, "/v1/schedule", nil
	case "edit":
		if op != "reschedule" && op != "instrument" {
			return nil, "", fmt.Errorf("unknown -op %q", op)
		}
		b, ok := workload.ByName(workloadID, spawn.Machine(machine))
		if !ok {
			return nil, "", fmt.Errorf("unknown -workload %q", workloadID)
		}
		x, err := workload.Generate(b, workload.Config{
			Machine:         spawn.Machine(machine),
			DynamicInsts:    dynInsts,
			Seed:            seed,
			SkipCalibration: true,
		})
		if err != nil {
			return nil, "", err
		}
		image := x.Marshal()
		if saveInput != "" {
			if err := os.WriteFile(saveInput, image, 0o644); err != nil {
				return nil, "", err
			}
		}
		return [][]byte{image}, fmt.Sprintf("/v1/edit?op=%s&machine=%s", op, machine), nil
	default:
		return nil, "", fmt.Errorf("unknown -mode %q (want schedule or edit)", mode)
	}
}

// post sends one request and verifies the response is usable, so a
// daemon that answers 200 with garbage still fails the run.
func post(client *http.Client, url, tenant string, body []byte, mode string) ([]byte, error) {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if mode == "schedule" {
		req.Header.Set("Content-Type", "application/json")
	} else {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if tenant != "" {
		req.Header.Set("X-Eeld-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, truncate(out, 200))
	}
	if mode == "schedule" {
		var parsed struct {
			Blocks [][]uint32 `json:"blocks"`
		}
		if err := json.Unmarshal(out, &parsed); err != nil || len(parsed.Blocks) == 0 {
			return nil, fmt.Errorf("malformed schedule response: %s", truncate(out, 200))
		}
	}
	return out, nil
}

// reportCache scrapes the daemon's cache gauges and optionally asserts
// a minimum hit rate.
func reportCache(client *http.Client, addr string, minHitRate float64) error {
	resp, err := client.Get(addr + "/metrics?format=json")
	if err != nil {
		return fmt.Errorf("scraping metrics: %w", err)
	}
	defer resp.Body.Close()
	var export struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&export); err != nil {
		return fmt.Errorf("parsing metrics: %w", err)
	}
	// Manifest comment lines on stdout, next to the bench lines: the
	// daemon's host core count and scheduler pool size determine how the
	// latency numbers scale, so `benchdiff -update` records them in the
	// eeld-load series manifest and refuses to hard-gate comparisons
	// across daemons with different parallelism.
	if cores, ok := export.Gauges["eeld.host_cores"]; ok {
		fmt.Printf("# manifest: eeld_numcpu=%d\n", cores)
	}
	if workers, ok := export.Gauges["eeld.pool_workers"]; ok {
		fmt.Printf("# manifest: eeld_workers=%d\n", workers)
	}

	hits := export.Gauges["eeld.cache.hits"]
	misses := export.Gauges["eeld.cache.misses"]
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(os.Stderr, "eelload: daemon cache: %d hits / %d misses (%.1f%% hit rate)\n", hits, misses, rate)
	if minHitRate >= 0 && rate < minHitRate {
		return fmt.Errorf("cache hit rate %.1f%% below required %.1f%%", rate, minHitRate)
	}
	return nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}
