// Command schedtrace inspects, diffs and replays the per-block decision
// traces the scheduler writes under -trace (one JSON line per block; see
// core.BlockTrace):
//
//	schedtrace traces/sched.jsonl                 # per-block summary
//	schedtrace -block 17 traces/sched.jsonl       # dump block 17's decisions
//	schedtrace -diff a/sched.jsonl b/sched.jsonl  # first diverging decision
//	schedtrace -replay traces/sched.jsonl         # golden-diff re-schedule
//	schedtrace -traceid 9f1c... traces/sched.jsonl # one daemon request's blocks
//
// -traceid keeps only blocks stamped with the given daemon request
// trace ID (eeld stamps every decision trace with the request trace it
// was scheduled under — see GET /debug/flight), narrowing a shared
// trace file to the blocks of one request. Composes with -block and
// -replay.
//
// -diff compares two traces of the same input decision by decision —
// ready set, chosen instruction, stall count, issue cycle — and exits
// non-zero at the first divergence. Tie-break reasons are engine-specific
// labels and are reported but never compared, so a fast-engine trace can
// be diffed against a reference-engine trace: byte-identical schedules
// must make byte-identical decisions.
//
// -replay re-schedules every block from the trace's recorded input
// instructions (traces carry full decoded instructions, so no executable
// is needed) under the engine/oracle the trace names — overridable with
// -engine/-oracle — and exits non-zero if any emitted schedule differs
// from the recorded output. This is the golden-diff debugging loop for
// engine divergences: record once, replay against the revision (or
// engine) under suspicion.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"eel/internal/core"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schedtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		block      = flag.Int("block", -1, "dump one block's decisions")
		diff       = flag.Bool("diff", false, "diff two trace files decision by decision")
		replay     = flag.Bool("replay", false, "re-schedule each block's input and diff against the recorded output")
		engineName = flag.String("engine", "", "override the traced engine for -replay")
		oracleName = flag.String("oracle", "", "override the traced oracle for -replay")
		traceID    = flag.String("traceid", "", "keep only blocks scheduled under this daemon request trace ID")
	)
	flag.Parse()

	switch {
	case *diff:
		if flag.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two trace files")
		}
		a, err := readTraces(flag.Arg(0))
		if err != nil {
			return err
		}
		b, err := readTraces(flag.Arg(1))
		if err != nil {
			return err
		}
		return diffTraces(a, b)
	case flag.NArg() != 1:
		fmt.Fprintln(os.Stderr, "usage: schedtrace [flags] trace.jsonl")
		os.Exit(2)
	}
	traces, err := readTraces(flag.Arg(0))
	if err != nil {
		return err
	}
	if *traceID != "" {
		kept := traces[:0]
		for i := range traces {
			if traces[i].TraceID == *traceID {
				kept = append(kept, traces[i])
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("no blocks carry trace ID %s (was the daemon run with -flight or -log?)", *traceID)
		}
		traces = kept
	}
	switch {
	case *replay:
		return replayTraces(traces, *engineName, *oracleName)
	case *block >= 0:
		for i := range traces {
			if traces[i].Block == *block {
				dumpTrace(&traces[i])
				return nil
			}
		}
		return fmt.Errorf("block %d not in trace", *block)
	}
	summarize(traces)
	return nil
}

// readTraces parses a JSONL trace file in record order.
func readTraces(path string) ([]core.BlockTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []core.BlockTrace
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var t core.BlockTrace
		if err := json.Unmarshal(sc.Bytes(), &t); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func summarize(traces []core.BlockTrace) {
	steps, changed, kept := 0, 0, 0
	for i := range traces {
		t := &traces[i]
		steps += len(t.Steps)
		if !instsEqual(t.Input, t.Output) {
			changed++
		}
		if t.KeptOriginal {
			kept++
		}
	}
	if len(traces) > 0 {
		t := &traces[0]
		fmt.Printf("model=%s engine=%s oracle=%s\n", t.Model, t.Engine, t.Oracle)
	}
	fmt.Printf("%d blocks, %d decisions, %d reordered, %d kept by the cost guard\n",
		len(traces), steps, changed, kept)
}

func dumpTrace(t *core.BlockTrace) {
	fmt.Printf("block %d: %d insts, model=%s engine=%s oracle=%s",
		t.Block, len(t.Input), t.Model, t.Engine, t.Oracle)
	if t.KeptOriginal {
		fmt.Print(" (guard kept original)")
	}
	fmt.Println()
	for i, s := range t.Steps {
		fmt.Printf("  %3d: ready=%v chose %d %-28q stalls=%d issue=%d (%s)\n",
			i, s.Ready, s.Chosen, s.Inst, s.Stalls, s.Issue, s.Reason)
	}
	fmt.Println("  output:")
	for i, asm := range t.Asm {
		fmt.Printf("  %3d: %s\n", i, asm)
	}
}

// diffTraces compares decisions block by block and reports the first
// divergence. Blocks pair by (batch index, occurrence) — a run tracing
// several edit passes repeats indices, and concurrent workers write
// blocks out of order, so position in the file means nothing. Reasons
// are engine-specific and not compared; everything else a decision
// carries must match.
func diffTraces(a, b []core.BlockTrace) error {
	am := indexTraces(a)
	bm := indexTraces(b)
	for key, t := range am {
		u, ok := bm[key]
		if !ok {
			return fmt.Errorf("block %d (pass %s) only in first trace", t.Block, key)
		}
		if err := diffBlock(t, u); err != nil {
			return err
		}
	}
	for key, u := range bm {
		if _, ok := am[key]; !ok {
			return fmt.Errorf("block %d (pass %s) only in second trace", u.Block, key)
		}
	}
	fmt.Printf("identical: %d blocks\n", len(a))
	return nil
}

func indexTraces(ts []core.BlockTrace) map[string]*core.BlockTrace {
	m := make(map[string]*core.BlockTrace, len(ts))
	seen := make(map[int]int, len(ts))
	for i := range ts {
		k := fmt.Sprintf("%d#%d", ts[i].Block, seen[ts[i].Block])
		seen[ts[i].Block]++
		m[k] = &ts[i]
	}
	return m
}

func diffBlock(a, b *core.BlockTrace) error {
	if !instsEqual(a.Input, b.Input) {
		return fmt.Errorf("block %d: inputs differ — traces are not of the same program", a.Block)
	}
	n := len(a.Steps)
	if len(b.Steps) < n {
		n = len(b.Steps)
	}
	for i := 0; i < n; i++ {
		x, y := &a.Steps[i], &b.Steps[i]
		switch {
		case !readyEqual(x.Ready, y.Ready):
			return fmt.Errorf("block %d step %d: ready sets diverge: %v vs %v", a.Block, i, x.Ready, y.Ready)
		case x.Chosen != y.Chosen:
			return fmt.Errorf("block %d step %d: picks diverge: %d (%s, %s) vs %d (%s, %s)",
				a.Block, i, x.Chosen, x.Inst, x.Reason, y.Chosen, y.Inst, y.Reason)
		case x.Stalls != y.Stalls:
			return fmt.Errorf("block %d step %d: stalls diverge on %s: %d vs %d", a.Block, i, x.Inst, x.Stalls, y.Stalls)
		case x.Issue != y.Issue:
			return fmt.Errorf("block %d step %d: issue cycles diverge on %s: %d vs %d", a.Block, i, x.Inst, x.Issue, y.Issue)
		}
	}
	if len(a.Steps) != len(b.Steps) {
		return fmt.Errorf("block %d: step counts diverge: %d vs %d", a.Block, len(a.Steps), len(b.Steps))
	}
	if !instsEqual(a.Output, b.Output) {
		return fmt.Errorf("block %d: outputs diverge after identical decisions (CTI refill?)", a.Block)
	}
	return nil
}

// replayTraces re-schedules every recorded input and golden-diffs the
// emitted schedule against the recorded output.
func replayTraces(traces []core.BlockTrace, engineName, oracleName string) error {
	scheds := map[string]*core.Scheduler{}
	bad := 0
	for i := range traces {
		t := &traces[i]
		eng, orc := t.Engine, t.Oracle
		if engineName != "" {
			eng = engineName
		}
		if oracleName != "" {
			orc = oracleName
		}
		key := t.Model + "/" + eng + "/" + orc
		s := scheds[key]
		if s == nil {
			engine, err := core.ParseEngine(eng)
			if err != nil {
				return fmt.Errorf("block %d: %w (use -engine to override a custom trace)", t.Block, err)
			}
			oracle, err := core.ParseOracle(orc)
			if err != nil {
				return fmt.Errorf("block %d: %w (use -oracle to override a custom trace)", t.Block, err)
			}
			model, err := spawn.Load(spawn.Machine(t.Model))
			if err != nil {
				return err
			}
			s = core.New(model, core.Options{Engine: engine, Oracle: oracle})
			scheds[key] = s
		}
		out, err := s.ScheduleBlock(t.Input)
		if err != nil {
			return fmt.Errorf("block %d: replay failed: %w", t.Block, err)
		}
		if !instsEqual(out, t.Output) {
			bad++
			fmt.Printf("block %d diverges:\n", t.Block)
			for j := 0; j < len(out) || j < len(t.Output); j++ {
				var was, now string
				if j < len(t.Output) {
					was = t.Output[j].String()
				}
				if j < len(out) {
					now = out[j].String()
				}
				marker := " "
				if was != now {
					marker = "!"
				}
				fmt.Printf("  %s %3d: %-28s | %s\n", marker, j, was, now)
			}
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d blocks diverge from the recorded schedule", bad, len(traces))
	}
	fmt.Printf("replay identical: %d blocks\n", len(traces))
	return nil
}

func instsEqual(a, b []sparc.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func readyEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
