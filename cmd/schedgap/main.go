// Command schedgap measures the greedy list scheduler's optimality gap:
// it reschedules every benchmark in the workload suite twice — once with
// the production greedy engine, once with the branch-and-bound exact
// engine (core.EngineOptimal) — simulates both executables on the
// machine's timing model, and reports, per benchmark, the simulated
// cycles of each schedule, the fraction of blocks the search proved
// optimal, and how many searches the node budget stopped.
//
//	schedgap                                   # all machines, full suite
//	schedgap -machines ultrasparc -json        # one machine, JSON report
//	schedgap -benchmarks 130.li,102.swim       # subset of the suite
//	schedgap -budget 20000 -insts 20000        # smaller search + programs
//	schedgap -bench | benchdiff -update -series schedgap
//	                                           # record the cycle numbers
//
// The report is deterministic for a fixed flag set: program generation
// is seeded, scheduling is worker-count-independent, and the search
// budget counts nodes, not wall time. CI diffs the -json output of a
// small configuration against a committed golden
// (testdata/ci/schedgap_smoke.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"text/tabwriter"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/obs"
	"eel/internal/sim"
	"eel/internal/spawn"
	"eel/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schedgap:", err)
		os.Exit(1)
	}
}

// Row is one benchmark's gap measurement on one machine. TOTAL rows
// aggregate a machine's suite (cycles summed, percentages recomputed).
type Row struct {
	Machine         string  `json:"machine"`
	Benchmark       string  `json:"benchmark"`
	GreedyCycles    int64   `json:"greedy_cycles"`
	OptimalCycles   int64   `json:"optimal_cycles"`
	GapPct          float64 `json:"gap_pct"`
	Blocks          int64   `json:"blocks"`
	Proven          int64   `json:"proven"`
	ProvenPct       float64 `json:"proven_pct"`
	SmallBlocks     int64   `json:"small_blocks"`
	SmallProven     int64   `json:"small_proven"`
	SmallProvenPct  float64 `json:"small_proven_pct"`
	BudgetExhausted int64   `json:"budget_exhausted"`
	Oversized       int64   `json:"oversized"`
	Improved        int64   `json:"improved"`
	CyclesSaved     int64   `json:"cycles_saved"`
	Nodes           int64   `json:"nodes"`
}

// Report is the full -json document. Flag values are embedded so a
// golden diff cannot silently compare runs of different configurations.
type Report struct {
	Insts    uint64 `json:"insts"`
	Seed     int64  `json:"seed"`
	Budget   int    `json:"budget"`
	MaxInsts int    `json:"max_insts"`
	Rows     []Row  `json:"rows"`
	Totals   []Row  `json:"totals"`
}

func run() error {
	var (
		machinesFlag = flag.String("machines", "", "comma-separated machine models (default: all)")
		benchFlag    = flag.String("benchmarks", "", "comma-separated benchmark subset (default: full suite)")
		insts        = flag.Uint64("insts", 200_000, "approximate dynamic instructions per generated benchmark")
		seed         = flag.Int64("seed", 1, "workload generation seed")
		budget       = flag.Int("budget", 0, "exact-search node budget per block (0 = default, negative disables)")
		maxInsts     = flag.Int("maxinsts", 0, "largest body size the exact search attempts (0 = default)")
		workers      = flag.Int("workers", 0, "scheduling worker pool size (0 = GOMAXPROCS)")
		maxSteps     = flag.Uint64("maxsteps", 1<<30, "simulator step limit per run")
		jsonOut      = flag.Bool("json", false, "emit the report as JSON")
		benchOut     = flag.Bool("bench", false, "emit go-bench lines (cycles) for benchdiff")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: schedgap [flags]")
		os.Exit(2)
	}

	machines := spawn.Machines()
	if *machinesFlag != "" {
		machines = nil
		for _, name := range strings.Split(*machinesFlag, ",") {
			machines = append(machines, spawn.Machine(strings.TrimSpace(name)))
		}
	}

	report := Report{
		Insts:    *insts,
		Seed:     *seed,
		Budget:   *budget,
		MaxInsts: *maxInsts,
	}
	for _, machine := range machines {
		model, err := spawn.Load(machine)
		if err != nil {
			return err
		}
		suite, err := selectBenchmarks(machine, *benchFlag)
		if err != nil {
			return err
		}
		var total Row
		total.Machine, total.Benchmark = string(machine), "TOTAL"
		for _, b := range suite {
			row, err := measure(machine, model, b, *insts, *seed, *budget, *maxInsts, *workers, *maxSteps)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", machine, b.Name, err)
			}
			report.Rows = append(report.Rows, row)
			total.GreedyCycles += row.GreedyCycles
			total.OptimalCycles += row.OptimalCycles
			total.Blocks += row.Blocks
			total.Proven += row.Proven
			total.SmallBlocks += row.SmallBlocks
			total.SmallProven += row.SmallProven
			total.BudgetExhausted += row.BudgetExhausted
			total.Oversized += row.Oversized
			total.Improved += row.Improved
			total.CyclesSaved += row.CyclesSaved
			total.Nodes += row.Nodes
		}
		fillPercentages(&total)
		report.Totals = append(report.Totals, total)
	}

	switch {
	case *benchOut:
		writeBench(os.Stdout, &report)
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&report)
	default:
		writeTable(os.Stdout, &report)
	}
	return nil
}

// selectBenchmarks resolves the -benchmarks filter against a machine's
// suite, preserving suite order; unknown names fail loudly with the
// valid list.
func selectBenchmarks(machine spawn.Machine, filter string) ([]workload.Benchmark, error) {
	suite := workload.Suite(machine)
	if filter == "" {
		return suite, nil
	}
	valid := make(map[string]bool, len(suite))
	names := make([]string, len(suite))
	for i, b := range suite {
		valid[b.Name] = true
		names[i] = b.Name
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if !valid[name] {
			return nil, fmt.Errorf("unknown benchmark %q (have %s)", name, strings.Join(names, ", "))
		}
		want[name] = true
	}
	var out []workload.Benchmark
	for _, b := range suite {
		if want[b.Name] {
			out = append(out, b)
		}
	}
	return out, nil
}

// measure generates one benchmark, reschedules it under both engines,
// and simulates both results on the machine's timing model.
func measure(machine spawn.Machine, model *spawn.Model, b workload.Benchmark,
	insts uint64, seed int64, budget, maxInsts, workers int, maxSteps uint64) (Row, error) {
	row := Row{Machine: string(machine), Benchmark: b.Name}
	x, err := workload.Generate(b, workload.Config{
		Machine:         machine,
		DynamicInsts:    insts,
		Seed:            seed,
		SkipCalibration: true,
	})
	if err != nil {
		return row, err
	}

	greedyEd, err := eel.Open(x)
	if err != nil {
		return row, err
	}
	greedyExe, err := greedyEd.Reschedule(model, core.Options{Workers: workers})
	if err != nil {
		return row, err
	}
	row.GreedyCycles, err = simCycles(greedyExe, model, machine, maxSteps)
	if err != nil {
		return row, err
	}

	optEd, err := eel.Open(x)
	if err != nil {
		return row, err
	}
	reg := obs.NewRegistry()
	optExe, err := optEd.Reschedule(model, core.Options{
		Workers:         workers,
		Engine:          core.EngineOptimal,
		OptimalBudget:   budget,
		OptimalMaxInsts: maxInsts,
		Obs:             reg,
	})
	if err != nil {
		return row, err
	}
	row.OptimalCycles, err = simCycles(optExe, model, machine, maxSteps)
	if err != nil {
		return row, err
	}

	c := reg.Counters()
	row.Blocks = c["core.optimal_blocks_total"]
	row.Proven = c["core.optimal_proven_total"]
	row.SmallBlocks = c["core.optimal_small_blocks_total"]
	row.SmallProven = c["core.optimal_small_proven_total"]
	row.BudgetExhausted = c["core.optimal_budget_exhausted"]
	row.Oversized = c["core.optimal_oversized_total"]
	row.Improved = c["core.optimal_improved_total"]
	row.CyclesSaved = c["core.optimal_cycles_saved_total"]
	row.Nodes = c["core.optimal_nodes_total"]
	fillPercentages(&row)
	return row, nil
}

func simCycles(x *exe.Exe, model *spawn.Model, machine spawn.Machine, maxSteps uint64) (int64, error) {
	_, tm, res, err := sim.RunMeasured(x, model, sim.DefaultTiming(machine), maxSteps)
	if err != nil {
		return 0, err
	}
	if !res.Halted {
		return 0, fmt.Errorf("simulation did not halt within %d steps", maxSteps)
	}
	return int64(tm.Cycles()), nil
}

// fillPercentages derives the ratio columns, rounded to 4 decimals so
// the JSON golden stays readable and stable.
func fillPercentages(r *Row) {
	r.GapPct = pct(r.GreedyCycles-r.OptimalCycles, r.GreedyCycles)
	r.ProvenPct = pct(r.Proven, r.Blocks)
	r.SmallProvenPct = pct(r.SmallProven, r.SmallBlocks)
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return math.Round(1e4*100*float64(num)/float64(den)) / 1e4
}

// writeTable renders the human report: one aligned row per benchmark,
// one TOTAL row per machine.
func writeTable(w *os.File, rep *Report) {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "machine\tbenchmark\tgreedy-cycles\toptimal-cycles\tgap%\tproven\tsmall-proven\texhausted\timproved\tsaved")
	emit := func(r *Row) {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.4f\t%d/%d (%.1f%%)\t%d/%d (%.1f%%)\t%d\t%d\t%d\n",
			r.Machine, r.Benchmark, r.GreedyCycles, r.OptimalCycles, r.GapPct,
			r.Proven, r.Blocks, r.ProvenPct,
			r.SmallProven, r.SmallBlocks, r.SmallProvenPct,
			r.BudgetExhausted, r.Improved, r.CyclesSaved)
	}
	for i := range rep.Rows {
		emit(&rep.Rows[i])
	}
	for i := range rep.Totals {
		emit(&rep.Totals[i])
	}
	tw.Flush()
}

// writeBench emits the cycle counts in go-bench syntax so benchdiff can
// record them as a series in BENCH_sched.json (the value is simulated
// cycles, not nanoseconds; the unit is required by the format).
func writeBench(w *os.File, rep *Report) {
	for i := range rep.Rows {
		r := &rep.Rows[i]
		fmt.Fprintf(w, "BenchmarkSchedGap/machine=%s/bench=%s/greedy 1 %d ns/op\n", r.Machine, r.Benchmark, r.GreedyCycles)
		fmt.Fprintf(w, "BenchmarkSchedGap/machine=%s/bench=%s/optimal 1 %d ns/op\n", r.Machine, r.Benchmark, r.OptimalCycles)
	}
	for i := range rep.Totals {
		r := &rep.Totals[i]
		fmt.Fprintf(w, "BenchmarkSchedGap/machine=%s/total/greedy 1 %d ns/op\n", r.Machine, r.GreedyCycles)
		fmt.Fprintf(w, "BenchmarkSchedGap/machine=%s/total/optimal 1 %d ns/op\n", r.Machine, r.OptimalCycles)
	}
}
