// Command spawn translates a SADL microarchitecture description into Go
// source containing the machine's timing tables and the pipeline_stalls
// function — the role of the paper's Spawn tool (Figure 1).
//
// Usage:
//
//	spawn -machine ultrasparc -package ultrasparc -o tables.go
//	spawn -sadl my.sadl -name mymachine -package mymachine -o tables.go
//	spawn -check
//
// With -o "-" (the default) the generated source is written to stdout.
// -check verifies that the generated tables committed under
// internal/spawn/gen/ are byte-for-byte what regeneration would produce
// (CI runs this so the compiled fast oracle can never drift from the
// SADL descriptions).
package main

import (
	"flag"
	"fmt"
	"os"

	"eel/internal/spawn"
)

func main() {
	var (
		machine  = flag.String("machine", "", "shipped machine description (hypersparc, supersparc, ultrasparc)")
		sadl     = flag.String("sadl", "", "path to a SADL description (alternative to -machine)")
		name     = flag.String("name", "custom", "machine name for a -sadl description")
		pkg      = flag.String("package", "machine", "package name for the generated source")
		out      = flag.String("o", "-", "output file, or - for stdout")
		describe = flag.Bool("describe", false, "print a human-readable model summary instead of code")
		check    = flag.Bool("check", false, "verify the committed generated tables match regeneration, then exit")
	)
	flag.Parse()

	if *check {
		if err := spawn.VerifyGenerated(); err != nil {
			fmt.Fprintln(os.Stderr, "spawn:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "spawn: committed generated tables are up to date")
		return
	}

	var model *spawn.Model
	var err error
	switch {
	case *machine != "" && *sadl != "":
		fmt.Fprintln(os.Stderr, "spawn: -machine and -sadl are mutually exclusive")
		os.Exit(2)
	case *machine != "":
		model, err = spawn.Load(spawn.Machine(*machine))
	case *sadl != "":
		var src []byte
		src, err = os.ReadFile(*sadl)
		if err == nil {
			model, err = spawn.Analyze(spawn.Machine(*name), string(src))
		}
	default:
		fmt.Fprintln(os.Stderr, "spawn: one of -machine or -sadl is required")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *describe {
		fmt.Print(model.Describe())
		return
	}

	src, err := spawn.Generate(model, *pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out == "-" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "spawn: wrote %s (%d groups, %d units)\n",
		*out, len(model.Groups), len(model.Units))
}
