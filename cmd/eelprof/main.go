// Command eelprof instruments an executable with QPT2 slow profiling, in
// the manner of the paper's Figure 3:
//
//	eelprof -machine ultrasparc -o prog.prof prog.exe      # instrument + schedule
//	eelprof -noschedule -o prog.prof prog.exe              # instrument only
//	eelprof -reschedule -o prog.sched prog.exe             # reschedule only
//	eelprof -run prog.exe                                  # run and report
//	eelprof -workers 8 -o prog.prof prog.exe               # 8 scheduling workers
//	eelprof -cachestats -o prog.prof prog.exe              # schedule-cache report
//
// With -run the tool executes the (possibly instrumented) program on the
// functional simulator with the machine's hardware timing model and prints
// cycles, instructions and, for instrumented binaries produced in the same
// invocation, the hottest basic blocks.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/spawn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eelprof:", err)
		os.Exit(1)
	}
}

// run isolates every error path so main can turn each one into a
// non-zero exit code (CI depends on that).
func run() error {
	var (
		machine    = flag.String("machine", "ultrasparc", "scheduling/timing model")
		out        = flag.String("o", "", "output executable path")
		noSchedule = flag.Bool("noschedule", false, "insert instrumentation without scheduling")
		reschedule = flag.Bool("reschedule", false, "reschedule only; no instrumentation")
		doRun      = flag.Bool("run", false, "execute the result and report")
		maxSteps   = flag.Uint64("maxsteps", 1<<30, "execution step limit with -run")
		workers    = flag.Int("workers", 0, "scheduling worker pool size (0 = GOMAXPROCS)")
		oracleName = flag.String("oracle", "fast", "stall oracle: fast (compiled tables) or reference (map-based ground truth)")
		engineName = flag.String("engine", "fast", "scheduling engine: fast (arena/priority-queue) or reference (pairwise rescan)")
		cacheStats = flag.Bool("cachestats", false, "report schedule-cache statistics after editing")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eelprof [flags] executable")
		os.Exit(2)
	}

	oracle, err := core.ParseOracle(*oracleName)
	if err != nil {
		return err
	}
	engine, err := core.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	model, err := spawn.Load(spawn.Machine(*machine))
	if err != nil {
		return err
	}
	x, err := exe.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	ed, err := eel.Open(x)
	if err != nil {
		return err
	}

	var prof *qpt.SlowProfiler
	result := x
	switch {
	case *reschedule:
		result, err = ed.Reschedule(model, core.Options{Workers: *workers, Oracle: oracle, Engine: engine})
	default:
		prof = &qpt.SlowProfiler{}
		opts := eel.Options{}
		if !*noSchedule {
			opts.Machine = model
			opts.Schedule = true
			opts.Sched.Workers = *workers
			opts.Sched.Oracle = oracle
			opts.Sched.Engine = engine
		}
		result, err = ed.Edit(prof, opts)
	}
	if err != nil {
		return err
	}

	if *cacheStats {
		reportCacheStats(ed.Cache())
	}

	if *out != "" {
		if err := result.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eelprof: wrote %s (%d -> %d instructions)\n",
			*out, len(x.Text), len(result.Text))
	}

	if !*doRun {
		return nil
	}
	in, tm, res, err := sim.RunMeasured(result, model, sim.DefaultTiming(spawn.Machine(*machine)), *maxSteps)
	if err != nil {
		return err
	}
	fmt.Printf("halted=%v instructions=%d cycles=%d seconds=%.6f icache-miss=%.4f\n",
		res.Halted, tm.Instructions(), tm.Cycles(), tm.Seconds(), tm.ICache().MissRate())
	if prof != nil {
		counts, err := prof.Counts(in.Mem().Read32)
		if err != nil {
			return err
		}
		type bc struct {
			block int
			n     uint64
		}
		var hot []bc
		for b, n := range counts {
			hot = append(hot, bc{b, n})
		}
		sort.Slice(hot, func(i, j int) bool { return hot[i].n > hot[j].n })
		fmt.Println("hottest blocks:")
		for i, h := range hot {
			if i == 10 {
				break
			}
			fmt.Printf("  block %4d: %12d executions\n", h.block, h.n)
		}
	}
	if !res.Halted {
		return fmt.Errorf("run did not halt within %d steps", *maxSteps)
	}
	return nil
}

// reportCacheStats prints the schedule cache's effectiveness: aggregate
// hit rate, occupancy against capacity, and how evenly the key space
// spread over the lock shards (max/mean shard occupancy).
func reportCacheStats(c *core.Cache) {
	hits, misses := c.Stats()
	total := hits + misses
	rate := 0.0
	if total > 0 {
		rate = 100 * float64(hits) / float64(total)
	}
	shards := c.ShardStats()
	maxLen, used := 0, 0
	for _, sh := range shards {
		if sh.Len > maxLen {
			maxLen = sh.Len
		}
		if sh.Len > 0 {
			used++
		}
	}
	mean := float64(c.Len()) / float64(len(shards))
	fmt.Fprintf(os.Stderr,
		"eelprof: schedule cache: %d/%d blocks, %d hits / %d misses (%.1f%% hit rate), %d/%d shards occupied (max %d, mean %.1f entries)\n",
		c.Len(), c.Capacity(), hits, misses, rate, used, len(shards), maxLen, mean)
}
