// Command eelprof instruments an executable with QPT2 slow profiling, in
// the manner of the paper's Figure 3:
//
//	eelprof -machine ultrasparc -o prog.prof prog.exe      # instrument + schedule
//	eelprof -noschedule -o prog.prof prog.exe              # instrument only
//	eelprof -reschedule -o prog.sched prog.exe             # reschedule only
//	eelprof -run prog.exe                                  # run and report
//	eelprof -workers 8 -o prog.prof prog.exe               # 8 scheduling workers
//	eelprof -cachestats -o prog.prof prog.exe              # schedule-cache report
//	eelprof -engine optimal -reschedule -o p.opt prog.exe  # exact B&B schedules
//	eelprof -metrics run.json -o prog.prof prog.exe        # telemetry export
//	eelprof -trace traces/ -o prog.prof prog.exe           # decision traces
//	eelprof -pprof :6060 -o prog.prof prog.exe             # live profiling
//	eelprof -gen 130.li -reschedule -o p.sched             # synthetic input
//
// -gen replaces the executable argument with a deterministic synthetic
// workload image (the same generator eelload's edit mode uses), so CI
// jobs can byte-diff schedules — e.g. across worker counts — without a
// binary corpus checked into the repo.
//
// With -run the tool executes the (possibly instrumented) program on the
// functional simulator with the machine's hardware timing model and prints
// cycles, instructions and, for instrumented binaries produced in the same
// invocation, the hottest basic blocks.
//
// -metrics writes the run's telemetry registry (stall attribution by
// hazard, phase spans, cache statistics) as JSON, or Prometheus text when
// the path ends in .prom. -trace writes one JSON line per scheduled
// block into <dir>/sched.jsonl for cmd/schedtrace. -pprof serves
// net/http/pprof on the given address for the life of the process.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/obs"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/spawn"
	"eel/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eelprof:", err)
		os.Exit(1)
	}
}

// run isolates every error path so main can turn each one into a
// non-zero exit code (CI depends on that).
func run() error {
	var (
		machine    = flag.String("machine", "ultrasparc", "scheduling/timing model")
		out        = flag.String("o", "", "output executable path")
		noSchedule = flag.Bool("noschedule", false, "insert instrumentation without scheduling")
		reschedule = flag.Bool("reschedule", false, "reschedule only; no instrumentation")
		doRun      = flag.Bool("run", false, "execute the result and report")
		maxSteps   = flag.Uint64("maxsteps", 1<<30, "execution step limit with -run")
		workers    = flag.Int("workers", 0, "scheduling worker pool size (0 = GOMAXPROCS)")
		oracleName = flag.String("oracle", "fast", "stall oracle: fast (compiled tables) or reference (map-based ground truth)")
		engineName = flag.String("engine", "fast", "scheduling engine: fast (arena/priority-queue), reference (pairwise rescan), or optimal (branch-and-bound exact)")
		cacheStats = flag.Bool("cachestats", false, "report schedule-cache statistics after editing")
		metricsOut = flag.String("metrics", "", "write telemetry to this file (JSON, or Prometheus text for .prom)")
		traceDir   = flag.String("trace", "", "write per-block scheduling decision traces into this directory")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
		gen        = flag.String("gen", "", "synthesize the input from this workload (e.g. 130.li) instead of reading an executable")
		genInsts   = flag.Uint64("gen-dyninsts", 1<<13, "with -gen: dynamic instructions in the generated image")
		genSeed    = flag.Int64("gen-seed", 1, "with -gen: workload generator seed")
	)
	flag.Parse()
	if (*gen == "" && flag.NArg() != 1) || (*gen != "" && flag.NArg() != 0) {
		fmt.Fprintln(os.Stderr, "usage: eelprof [flags] executable\n       eelprof -gen workload [flags]")
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "eelprof: pprof:", err)
			}
		}()
	}

	oracle, err := core.ParseOracle(*oracleName)
	if err != nil {
		return err
	}
	engine, err := core.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		reg.StampRunManifest()
		reg.SetManifest("tool", "eelprof")
		reg.SetManifest("machine", *machine)
		reg.SetManifest("oracle", oracle.String())
		reg.SetManifest("engine", engine.String())
		reg.SetManifest("workers", strconv.Itoa(*workers))
	}
	// The optimal engine withholds unproven schedules from the cache;
	// -cachestats reports those bypasses, which needs a registry even
	// when -metrics is off.
	if *cacheStats && engine == core.EngineOptimal && reg == nil {
		reg = obs.NewRegistry()
	}
	var trace core.TraceSink
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return err
		}
		j, err := obs.CreateJSONL(filepath.Join(*traceDir, "sched.jsonl"))
		if err != nil {
			return err
		}
		defer j.Close()
		trace = core.NewJSONLTraceSink(j)
	}
	model, err := spawn.Load(spawn.Machine(*machine))
	if err != nil {
		return err
	}
	var x *exe.Exe
	if *gen != "" {
		b, ok := workload.ByName(*gen, spawn.Machine(*machine))
		if !ok {
			return fmt.Errorf("unknown -gen workload %q", *gen)
		}
		x, err = workload.Generate(b, workload.Config{
			Machine:         spawn.Machine(*machine),
			DynamicInsts:    *genInsts,
			Seed:            *genSeed,
			SkipCalibration: true,
		})
	} else {
		x, err = exe.ReadFile(flag.Arg(0))
	}
	if err != nil {
		return err
	}
	ed, err := eel.Open(x)
	if err != nil {
		return err
	}

	var prof *qpt.SlowProfiler
	result := x
	switch {
	case *reschedule:
		result, err = ed.Reschedule(model, core.Options{
			Workers: *workers, Oracle: oracle, Engine: engine, Obs: reg, Trace: trace})
	default:
		prof = &qpt.SlowProfiler{}
		opts := eel.Options{}
		if !*noSchedule {
			opts.Machine = model
			opts.Schedule = true
			opts.Sched.Workers = *workers
			opts.Sched.Oracle = oracle
			opts.Sched.Engine = engine
			opts.Sched.Obs = reg
			opts.Sched.Trace = trace
		}
		result, err = ed.Edit(prof, opts)
	}
	if err != nil {
		// A failed edit still leaves observable state behind: the blocks
		// scheduled before the failure sit in the cache and the registry.
		// Report both, marked incomplete, and keep the error — and the
		// non-zero exit — intact.
		if *cacheStats {
			reportCacheStats(ed.Cache(), true)
			reportOptimalCacheStats(engine, reg, true)
		}
		if reg != nil && *metricsOut != "" {
			reg.SetManifest("incomplete", "true")
			if werr := reg.WriteFile(*metricsOut); werr != nil {
				fmt.Fprintln(os.Stderr, "eelprof: metrics:", werr)
			}
		}
		return err
	}

	if *cacheStats {
		reportCacheStats(ed.Cache(), false)
		reportOptimalCacheStats(engine, reg, false)
	}
	if reg != nil && *metricsOut != "" {
		if err := reg.WriteFile(*metricsOut); err != nil {
			return err
		}
	}

	if *out != "" {
		if err := result.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eelprof: wrote %s (%d -> %d instructions)\n",
			*out, len(x.Text), len(result.Text))
	}

	if !*doRun {
		return nil
	}
	in, tm, res, err := sim.RunMeasured(result, model, sim.DefaultTiming(spawn.Machine(*machine)), *maxSteps)
	if err != nil {
		return err
	}
	fmt.Printf("halted=%v instructions=%d cycles=%d seconds=%.6f icache-miss=%.4f\n",
		res.Halted, tm.Instructions(), tm.Cycles(), tm.Seconds(), tm.ICache().MissRate())
	if prof != nil {
		counts, err := prof.Counts(in.Mem().Read32)
		if err != nil {
			return err
		}
		type bc struct {
			block int
			n     uint64
		}
		var hot []bc
		for b, n := range counts {
			hot = append(hot, bc{b, n})
		}
		sort.Slice(hot, func(i, j int) bool { return hot[i].n > hot[j].n })
		fmt.Println("hottest blocks:")
		for i, h := range hot {
			if i == 10 {
				break
			}
			fmt.Printf("  block %4d: %12d executions\n", h.block, h.n)
		}
	}
	if !res.Halted {
		return fmt.Errorf("run did not halt within %d steps", *maxSteps)
	}
	return nil
}

// reportCacheStats prints the schedule cache's effectiveness: aggregate
// hit rate, occupancy against capacity, and how evenly the key space
// spread over the lock shards (max/mean shard occupancy). incomplete
// marks a report cut short by a failed edit: the numbers are the state
// at the failure, not a full run's.
func reportCacheStats(c *core.Cache, incomplete bool) {
	hits, misses := c.Stats()
	total := hits + misses
	rate := 0.0
	if total > 0 {
		rate = 100 * float64(hits) / float64(total)
	}
	shards := c.ShardStats()
	maxLen, used := 0, 0
	for _, sh := range shards {
		if sh.Len > maxLen {
			maxLen = sh.Len
		}
		if sh.Len > 0 {
			used++
		}
	}
	mean := float64(c.Len()) / float64(len(shards))
	marker := ""
	if incomplete {
		marker = " (incomplete)"
	}
	fmt.Fprintf(os.Stderr,
		"eelprof: schedule cache%s: %d/%d blocks, %d hits / %d misses (%.1f%% hit rate), %d/%d shards occupied (max %d, mean %.1f entries)\n",
		marker, c.Len(), c.Capacity(), hits, misses, rate, used, len(shards), maxLen, mean)
}

// reportOptimalCacheStats extends the -cachestats report for the exact
// engine: a schedule whose search ran out of budget carries no
// optimality certificate and is never inserted into the cache, so the
// bypass count explains occupancy gaps the plain cache report can't.
func reportOptimalCacheStats(engine core.Engine, reg *obs.Registry, incomplete bool) {
	if engine != core.EngineOptimal || reg == nil {
		return
	}
	c := reg.Counters()
	marker := ""
	if incomplete {
		marker = " (incomplete)"
	}
	fmt.Fprintf(os.Stderr,
		"eelprof: optimal engine%s: %d/%d blocks proven optimal, %d improved (%d cycles), %d budget-exhausted, %d unproven schedules bypassed the cache\n",
		marker,
		c["core.optimal_proven_total"], c["core.optimal_blocks_total"],
		c["core.optimal_improved_total"], c["core.optimal_cycles_saved_total"],
		c["core.optimal_budget_exhausted"], c["core.optimal_cache_bypass_total"])
}
