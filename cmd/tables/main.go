// Command tables regenerates the paper's evaluation tables:
//
//	tables -table 1      Table 1: slow profiling on the UltraSPARC
//	tables -table 2      Table 2: same, with a rescheduled baseline
//	tables -table 3      Table 3: slow profiling on the SuperSPARC
//	tables -summary      the per-suite averages quoted in §1 and §5
//	tables -table 1 -benchmarks 130.li,102.swim   (subset)
//
// -insts scales each benchmark's dynamic length (default 600k); larger
// runs are slower but less noisy. -workers sizes the scheduling worker
// pool, -tableworkers the benchmark-row pool (0 = GOMAXPROCS for both),
// and -oracle/-engine select the stall oracle and scheduling engine; all
// four change wall-clock time only, never a table. -json emits the table
// as JSON instead of the paper's format.
//
// -metrics writes the run's telemetry (per-hazard stall attribution,
// per-row wall time with a slowest_rows top-5, simulator totals, phase
// spans, a run manifest) as JSON, or Prometheus text when the path ends
// in .prom; telemetry never changes a table. -trace writes per-block
// scheduling decision traces into a directory for cmd/schedtrace, and
// -pprof serves net/http/pprof for the life of the run.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"

	"eel/internal/bench"
	"eel/internal/core"
	"eel/internal/obs"
	"eel/internal/spawn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

// run isolates every error path so main can turn each one into a
// non-zero exit code (CI depends on that).
func run() error {
	var (
		table      = flag.Int("table", 0, "table to regenerate (1, 2 or 3)")
		summary    = flag.Bool("summary", false, "print the per-suite averages for all three tables")
		insts      = flag.Uint64("insts", 600_000, "approximate dynamic instructions per run")
		seed       = flag.Int64("seed", 0, "workload generation seed")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset")
		validate   = flag.Bool("validate", false, "cross-check profile counts between runs")
		workers    = flag.Int("workers", 0, "scheduling worker pool size (0 = GOMAXPROCS)")
		tworkers   = flag.Int("tableworkers", 0, "benchmark-row worker pool size (0 = GOMAXPROCS)")
		oracleName = flag.String("oracle", "fast", "stall oracle: fast (compiled tables) or reference (map-based ground truth)")
		engineName = flag.String("engine", "fast", "scheduling engine: fast (arena/priority-queue), reference (pairwise rescan), or optimal (branch-and-bound exact)")
		jsonOut    = flag.Bool("json", false, "emit the table as JSON instead of the paper's text format")
		metricsOut = flag.String("metrics", "", "write telemetry to this file (JSON, or Prometheus text for .prom)")
		traceDir   = flag.String("trace", "", "write per-block scheduling decision traces into this directory")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	)
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "tables: pprof:", err)
			}
		}()
	}

	oracle, err := core.ParseOracle(*oracleName)
	if err != nil {
		return err
	}
	engine, err := core.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		reg.SetManifest("tool", "tables")
	}
	var trace core.TraceSink
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return err
		}
		j, err := obs.CreateJSONL(filepath.Join(*traceDir, "sched.jsonl"))
		if err != nil {
			return err
		}
		defer j.Close()
		trace = core.NewJSONLTraceSink(j)
	}

	// Unknown names are rejected by bench.RunTable itself, which lists
	// every unknown benchmark in one error.
	subset := []string(nil)
	if *benchmarks != "" {
		subset = strings.Split(*benchmarks, ",")
	}
	mk := func(machine spawn.Machine, resched bool) bench.TableConfig {
		cfg := bench.TableConfig{
			Machine:            machine,
			RescheduleBaseline: resched,
			DynamicInsts:       *insts,
			Seed:               *seed,
			Benchmarks:         subset,
			ValidateCounts:     *validate,
			Workers:            *workers,
			Oracle:             oracle,
			Engine:             engine,
			TableWorkers:       *tworkers,
			Obs:                reg,
		}
		cfg.Sched.Trace = trace
		return cfg
	}
	configs := map[int]bench.TableConfig{
		1: mk(spawn.UltraSPARC, false),
		2: mk(spawn.UltraSPARC, true),
		3: mk(spawn.SuperSPARC, false),
	}

	if *summary {
		for _, n := range []int{1, 2, 3} {
			t, err := bench.RunTable(configs[n])
			if err != nil {
				return err
			}
			ii, is, ih, _ := t.Averages(false)
			fi, fs, fh, _ := t.Averages(true)
			fmt.Printf("Table %d (%s%s):\n", n, t.Config.Machine, rescheduleNote(t.Config))
			fmt.Printf("  CINT95: inst %.2fx  sched %.2fx  hidden %.1f%%\n", ii, is, ih)
			fmt.Printf("  CFP95:  inst %.2fx  sched %.2fx  hidden %.1f%%\n", fi, fs, fh)
		}
		return writeMetrics(reg, *metricsOut)
	}

	cfg, ok := configs[*table]
	if !ok {
		fmt.Fprintln(os.Stderr, "tables: pass -table 1, 2 or 3, or -summary")
		os.Exit(2)
	}
	t, err := bench.RunTable(cfg)
	if err != nil {
		return err
	}
	if err := writeMetrics(reg, *metricsOut); err != nil {
		return err
	}
	if *jsonOut {
		return t.WriteJSON(os.Stdout)
	}
	fmt.Printf("Table %d: %s", *table, t.String())
	return nil
}

// writeMetrics exports the telemetry registry, if one was requested.
func writeMetrics(reg *obs.Registry, path string) error {
	if reg == nil || path == "" {
		return nil
	}
	return reg.WriteFile(path)
}

func rescheduleNote(c bench.TableConfig) string {
	if c.RescheduleBaseline {
		return ", rescheduled baseline"
	}
	return ""
}
