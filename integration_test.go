package repro

import (
	"path/filepath"
	"testing"

	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/spawn"
	"eel/internal/workload"
)

// TestEndToEndFileRoundTrip drives the full toolchain through the on-disk
// executable format, the way cmd/eelprof does: generate a workload, write
// it to a file, read it back, instrument + schedule, write the result,
// read it back again, run it, and validate the profile.
func TestEndToEndFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	machine := spawn.UltraSPARC
	model := spawn.MustLoad(machine)

	b, ok := workload.ByName("129.compress", machine)
	if !ok {
		t.Fatal("unknown benchmark")
	}
	x, err := workload.Generate(b, workload.Config{
		Machine:         machine,
		DynamicInsts:    80_000,
		SkipCalibration: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := filepath.Join(dir, "compress.exe")
	if err := x.WriteFile(orig); err != nil {
		t.Fatal(err)
	}

	loaded, err := exe.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := eel.Open(loaded)
	if err != nil {
		t.Fatal(err)
	}
	prof := &qpt.SlowProfiler{}
	instrumented, err := ed.Edit(prof, eel.Options{Machine: model, Schedule: true})
	if err != nil {
		t.Fatal(err)
	}
	instPath := filepath.Join(dir, "compress.prof")
	if err := instrumented.WriteFile(instPath); err != nil {
		t.Fatal(err)
	}

	final, err := exe.ReadFile(instPath)
	if err != nil {
		t.Fatal(err)
	}
	in, tm, res, err := sim.RunMeasured(final, model, sim.DefaultTiming(machine), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if tm.Cycles() <= 0 {
		t.Fatal("no cycles measured")
	}
	counts, err := prof.Counts(in.Mem().Read32)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Error("profile is empty")
	}
	// The trace counter symbol must be present in the written image.
	if _, ok := final.Lookup("__qpt_counters"); !ok {
		t.Error("__qpt_counters symbol missing from instrumented image")
	}
}

// TestSuiteCoversBothCompilations spot-checks that per-machine suites feed
// through generation on both evaluated machines.
func TestSuiteCoversBothCompilations(t *testing.T) {
	for _, machine := range []spawn.Machine{spawn.UltraSPARC, spawn.SuperSPARC} {
		b, ok := workload.ByName("104.hydro2d", machine)
		if !ok {
			t.Fatal("missing benchmark")
		}
		x, err := workload.Generate(b, workload.Config{
			Machine:         machine,
			DynamicInsts:    50_000,
			SkipCalibration: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
		in, err := sim.NewInterp(x)
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.Run(5_000_000, nil)
		if err != nil {
			t.Fatalf("%s: %v", machine, err)
		}
		if !res.Halted {
			t.Fatalf("%s: did not halt", machine)
		}
	}
}
