// Profiling: a full round trip on a synthetic SPEC95 stand-in. Generates
// the "130.li" workload, instruments it three ways (unscheduled, scheduled
// conservatively, scheduled with the paper's aliasing rule), measures each
// on the UltraSPARC hardware model, validates the profile against
// ground-truth block counts from the functional interpreter, and reports
// how much of the overhead scheduling hid.
//
//	go run ./examples/profiling
package main

import (
	"fmt"
	"log"

	"eel/internal/core"
	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/workload"
)

func main() {
	machine := spawn.UltraSPARC
	model := spawn.MustLoad(machine)
	tcfg := sim.DefaultTiming(machine)

	b, _ := workload.ByName("130.li", machine)
	x, err := workload.Generate(b, workload.Config{Machine: machine, DynamicInsts: 400_000})
	if err != nil {
		log.Fatal(err)
	}
	ed, err := eel.Open(x)
	if err != nil {
		log.Fatal(err)
	}
	avg, err := workload.MeasureAvgBlockSize(x, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d blocks, dynamic avg block size %.2f (paper: %.1f)\n",
		b.Name, len(ed.Graph().Blocks), avg, b.AvgBlockSize)

	_, baseTm, _, err := sim.RunMeasured(x, model, tcfg, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	base := baseTm.Cycles()
	fmt.Printf("uninstrumented: %d cycles\n", base)

	variants := []struct {
		name string
		opts eel.Options
	}{
		{"unscheduled", eel.Options{}},
		{"scheduled (conservative aliasing)", eel.Options{
			Machine: model, Schedule: true, Sched: core.Options{ConservativeMem: true}}},
		{"scheduled (paper aliasing rule)", eel.Options{Machine: model, Schedule: true}},
	}

	// Ground truth: run the original program counting block entries.
	truth, err := groundTruth(x, ed)
	if err != nil {
		log.Fatal(err)
	}

	var unscheduled int64
	for _, v := range variants {
		prof := &qpt.SlowProfiler{}
		edited, err := ed.Edit(prof, v.opts)
		if err != nil {
			log.Fatal(err)
		}
		in, tm, _, err := sim.RunMeasured(edited, model, tcfg, 1<<30)
		if err != nil {
			log.Fatal(err)
		}
		counts, err := prof.Counts(in.Mem().Read32)
		if err != nil {
			log.Fatal(err)
		}
		bad := 0
		for blk, want := range truth {
			if counts[blk] != want {
				bad++
			}
		}
		line := fmt.Sprintf("%-36s %9d cycles (%.2fx)", v.name, tm.Cycles(),
			float64(tm.Cycles())/float64(base))
		if v.name == "unscheduled" {
			unscheduled = tm.Cycles()
		} else if unscheduled > base {
			hidden := 100 * float64(unscheduled-tm.Cycles()) / float64(unscheduled-base)
			line += fmt.Sprintf("  hides %.1f%% of overhead", hidden)
		}
		if bad > 0 {
			line += fmt.Sprintf("  [%d blocks misprofiled!]", bad)
		} else {
			line += "  profile exact"
		}
		fmt.Println(line)
	}
}

// groundTruth counts block entries with the functional interpreter.
func groundTruth(x *exe.Exe, ed *eel.Editor) (map[int]uint64, error) {
	in, err := sim.NewInterp(x)
	if err != nil {
		return nil, err
	}
	startOf := make(map[int]int)
	for _, b := range ed.Graph().Blocks {
		startOf[b.Start] = b.Index
	}
	counts := make(map[int]uint64)
	_, err = in.Run(1<<30, func(idx int, inst *sparc.Inst) {
		if bi, ok := startOf[idx]; ok {
			counts[bi]++
		}
	})
	return counts, err
}
