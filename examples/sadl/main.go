// SADL: parse the paper's Figure 2 description of the ROSS hyperSPARC and
// print what Spawn infers from it — the timing groups, per-cycle resource
// usage and register read/write cycles the instruction scheduler consumes
// — then do the same for the full shipped UltraSPARC description.
//
//	go run ./examples/sadl
package main

import (
	"fmt"
	"log"
	"os"

	"eel/internal/sadl"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

func main() {
	src, err := os.ReadFile("internal/sadl/testdata/hypersparc_fig2.sadl")
	if err != nil {
		// Running from a different directory: fall back to the shipped
		// full description.
		src = nil
	}
	if src != nil {
		fmt.Println("== Figure 2: add/sub/sra on the ROSS hyperSPARC")
		file, err := sadl.Parse(string(src))
		if err != nil {
			log.Fatal(err)
		}
		ev, err := sadl.NewEvaluator(file)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range ev.SemNames() {
			for _, iflag := range []int{0, 1} {
				rec, err := ev.Timing(name, map[string]int{"iflag": iflag})
				if err != nil {
					log.Fatal(err)
				}
				variant := "reg"
				if iflag == 1 {
					variant = "imm"
				}
				fmt.Printf("%-4s/%s: %d cycles, reads %v, writes %v\n",
					name, variant, rec.Cycles, summarizeReads(rec), summarizeWrites(rec))
			}
		}
		fmt.Println()
	}

	fmt.Println("== Shipped UltraSPARC model (Spawn analysis)")
	model := spawn.MustLoad(spawn.UltraSPARC)
	fmt.Printf("issue width %d, %d units, %d timing groups\n",
		model.IssueWidth, len(model.Units), len(model.Groups))
	for _, op := range []sparc.Op{sparc.OpAdd, sparc.OpLd, sparc.OpSt, sparc.OpFmuld, sparc.OpFdivd, sparc.OpBicc} {
		g, err := model.GroupFor(op, op != sparc.OpFmuld && op != sparc.OpFdivd && op != sparc.OpBicc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s group %2d: %2d cycles, markers %v\n",
			op.Name(), g.ID, g.Cycles, g.Markers)
	}
}

func summarizeReads(rec *sadl.Record) []string {
	var out []string
	for _, r := range rec.Reads {
		out = append(out, fmt.Sprintf("%s.%s@%d", r.File, r.Field, r.Cycle))
	}
	return out
}

func summarizeWrites(rec *sadl.Record) []string {
	var out []string
	for _, w := range rec.Writes {
		out = append(out, fmt.Sprintf("%s.%s avail@%d", w.File, w.Field, w.Avail))
	}
	return out
}
