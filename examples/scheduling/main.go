// Scheduling: show the paper's core mechanism on one basic block. A
// floating-point kernel block is instrumented with the QPT2 counter
// sequence; the block is shown before and after EEL's list scheduler
// interleaves the instrumentation with the original code, with the
// pipeline_stalls cost of each version on three SPARC implementations.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"eel/internal/core"
	"eel/internal/pipe"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

func main() {
	// A saxpy-flavoured block body (no terminator): two loads, a multiply
	// -add chain, a store.
	block, err := sparc.Assemble(`
	ldd [%o0 + 0], %f0
	ldd [%o0 + 8], %f2
	fmuld %f0, %f4, %f6
	faddd %f6, %f2, %f8
	std %f8, [%o1 + 0]
	add %o0, 16, %o0
`)
	if err != nil {
		log.Fatal(err)
	}

	// The QPT2 slow profiling sequence, marked as instrumentation so the
	// scheduler may move it past original memory references.
	counter := []sparc.Inst{
		sparc.NewSethi(sparc.G6, 0x100000),
		sparc.NewLoad(sparc.OpLd, sparc.G7, sparc.G6, 0x40),
		sparc.NewALUImm(sparc.OpAdd, sparc.G7, sparc.G7, 1),
		sparc.NewStore(sparc.OpSt, sparc.G7, sparc.G6, 0x40),
	}
	for i := range counter {
		counter[i].Instrumented = true
	}
	unscheduled := append(append([]sparc.Inst(nil), counter...), block...)

	for _, machine := range spawn.Machines() {
		model := spawn.MustLoad(machine)
		sched := core.New(model, core.Options{})
		scheduled, err := sched.ScheduleBlock(unscheduled)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s (%d-way issue)\n", machine, model.IssueWidth)
		show(model, "original block", block)
		show(model, "instrumented, unscheduled", unscheduled)
		show(model, "instrumented, scheduled", scheduled)
		fmt.Println()
	}
}

// show prints a sequence with per-instruction issue cycles from the
// machine's pipeline_stalls model, plus the block total.
func show(model *spawn.Model, title string, insts []sparc.Inst) {
	st := pipe.NewState(model)
	fmt.Printf("-- %s\n", title)
	var last int64
	for _, inst := range insts {
		stalls, cycle, err := st.Issue(inst)
		if err != nil {
			log.Fatal(err)
		}
		mark := ""
		if inst.Instrumented {
			mark = "  <- instrumentation"
		}
		fmt.Printf("   cycle %2d (+%d)  %-28v%s\n", cycle, stalls, inst, mark)
		last = cycle
	}
	fmt.Printf("   total: %d cycles\n", last+1)
}
