// Quickstart: build a small SPARC program, instrument it with QPT2 slow
// profiling scheduled into the unused issue slots of an UltraSPARC, run
// both versions on the simulator, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"eel/internal/eel"
	"eel/internal/exe"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

const program = `
	! sum the words of an array, 10000 times over
	sethi %hi(0x40000000), %o0
	set 10000, %i0
outer:
	mov 0, %g1              ! sum
	mov 0, %g2              ! i
loop:
	sll %g2, 2, %g3
	ld [%o0 + %g3], %g4
	add %g1, %g4, %g1
	add %g2, 1, %g2
	cmp %g2, 64
	bl loop
	nop
	subcc %i0, 1, %i0
	bne outer
	nop
	st %g1, [%o0 + 256]     ! publish the sum
	ta 0
`

func main() {
	// 1. Assemble into an executable image.
	insts, err := sparc.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	x := exe.New()
	for _, inst := range insts {
		x.Text = append(x.Text, sparc.MustEncode(inst))
	}
	x.Data = make([]byte, 512)
	for i := 0; i < 64; i++ {
		x.Data[4*i+3] = byte(i) // array[i] = i
	}

	// 2. Open with EEL and instrument with scheduled slow profiling.
	model := spawn.MustLoad(spawn.UltraSPARC)
	ed, err := eel.Open(x)
	if err != nil {
		log.Fatal(err)
	}
	prof := &qpt.SlowProfiler{}
	instrumented, err := ed.Edit(prof, eel.Options{Machine: model, Schedule: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("text size: %d -> %d instructions, %d counters\n",
		len(x.Text), len(instrumented.Text), prof.NumCounters())

	// 3. Run both on the UltraSPARC hardware timing model.
	cfg := sim.DefaultTiming(spawn.UltraSPARC)
	_, base, _, err := sim.RunMeasured(x, model, cfg, 1<<28)
	if err != nil {
		log.Fatal(err)
	}
	in, timed, _, err := sim.RunMeasured(instrumented, model, cfg, 1<<28)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninstrumented: %d cycles\n", base.Cycles())
	fmt.Printf("instrumented:   %d cycles (%.2fx)\n",
		timed.Cycles(), float64(timed.Cycles())/float64(base.Cycles()))

	// 4. Read the profile and check it against the program structure.
	counts, err := prof.Counts(in.Mem().Read32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("block execution counts:")
	for _, b := range ed.Graph().Blocks {
		fmt.Printf("  block %d (insts %d..%d): %d\n", b.Index, b.Start, b.End-1, counts[b.Index])
	}
	sum := in.Mem().Read32(0x40000100)
	fmt.Printf("program result: sum = %d (want %d)\n", sum, 64*63/2)
}
